"""Sharded-engine benchmark: serial array-kernel IDA vs ``solve_sharded``.

Measures, per Fig. 10 sweep point (|Q| ∈ {250, 500, 1000, 2500, 5000}
paper units at k = 80, |P| = 100K, scaled linearly):

* **serial** — one exact IDA solve on the ``array`` flow kernel (the
  PR 1 performance baseline);
* **sharded** — ``solve_sharded`` at ``--shards``/``--workers`` with the
  nearest router, including planning, routing, the parallel per-shard
  solves, warm-session boundary reconciliation, and the residual pass.

Wall-clock speedup on a few-core box comes mostly from *decomposition*
(per-shard solves are superlinearly cheaper than the monolith); on real
multi-core hardware the worker processes stack on top of that.  The
script records ``cpu_count`` so the numbers can be read honestly.

Two correctness gates always run (CI executes them at tiny scale):

* **provider-disjoint exactness** — on a separated-cluster workload
  (``make_separated_problem``) the sharded objective must equal the
  serial optimum;
* **concise ≤ SA** — with the concise router the sharded objective must
  not exceed serial SA at the same δ.

Usage::

    PYTHONPATH=src python benchmarks/bench_shard.py \
        [--out BENCH_shard.json] [--scale 0.05] [--seed 0] [--points 3] \
        [--shards 4] [--workers 4]
"""

from __future__ import annotations

import argparse
import json
import math
import os
import time

from repro.core.shard import solve_sharded
from repro.core.solve import solve
from repro.datagen.workloads import make_problem, make_separated_problem
from repro.experiments.config import PAPER_DEFAULTS, scaled

NQ_SWEEP_PAPER = (250, 500, 1000, 2500, 5000)


def bench_point(nq_paper, scale, seed, shards, workers):
    # Efficiency normalizes speedup by the parallelism actually available
    # — min(workers, cores) — so a 1-core runner reporting 1.2x reads as
    # "decomposition won", not as fake parallel scaling.  The nightly
    # gate holds this number, not raw speedup.
    effective = max(1, min(workers or 1, os.cpu_count() or 1))
    nq = scaled(nq_paper, scale, minimum=2)
    np_ = scaled(PAPER_DEFAULTS["np"], scale, minimum=50)
    k = PAPER_DEFAULTS["k"]

    problem = make_problem(nq=nq, np_=np_, k=k, seed=seed)
    problem.rtree()  # index construction is setup, not measured work
    started = time.perf_counter()
    serial = solve(problem, "ida", backend="array")
    serial_s = time.perf_counter() - started

    problem = make_problem(nq=nq, np_=np_, k=k, seed=seed)
    started = time.perf_counter()
    sharded = solve_sharded(problem, shards, workers=workers, backend="array")
    sharded_s = time.perf_counter() - started

    extra = sharded.stats.extra
    row = {
        "nq_paper": nq_paper,
        "nq": nq,
        "np": np_,
        "k": k,
        "gamma": problem.gamma,
        "serial_s": serial_s,
        "sharded_s": sharded_s,
        "speedup": serial_s / sharded_s,
        "scaling_efficiency": serial_s / sharded_s / effective,
        "effective_parallelism": effective,
        "serial_cost": serial.cost,
        "sharded_cost": sharded.cost,
        "cost_ratio": sharded.cost / serial.cost if serial.cost else 1.0,
        "shards_planned": extra["shards"],
        "reconcile_moves": extra["reconcile_moves"],
        "reconcile_attempted": extra["reconcile_attempted"],
        "reconcile_sessions": extra["reconcile_sessions"],
        "residual_matched": extra["residual"]["matched"],
        "phase_s": {
            "plan": extra["plan_s"],
            "route": extra["route_s"],
            "solve": extra["solve_s"],
            "reconcile": extra["reconcile_s"],
        },
    }
    if sharded.size != serial.size:
        raise AssertionError(
            f"sharded matching size {sharded.size} != serial {serial.size}"
        )
    return row


def exactness_gate(scale, seed, workers):
    """Provider-disjoint shardings must reproduce the serial optimum."""
    nq_per = max(3, scaled(12, scale * 20))
    np_per = max(30, scaled(250, scale * 20))
    k = max(10, (np_per + nq_per - 1) // nq_per)
    def build():
        return make_separated_problem(
            clusters=4, nq_per=nq_per, np_per=np_per, k=k, seed=seed
        )
    serial = solve(build(), "ida", backend="array")
    sharded = solve_sharded(build(), 4, workers=workers, delta=200.0, backend="array")
    diff = abs(sharded.cost - serial.cost)
    if diff > 1e-6 * max(1.0, serial.cost):
        raise AssertionError(
            "provider-disjoint exactness violated: sharded cost "
            f"{sharded.cost} vs serial {serial.cost}"
        )
    return {
        "clusters": 4,
        "nq_per": nq_per,
        "np_per": np_per,
        "serial_cost": serial.cost,
        "sharded_cost": sharded.cost,
        "status": "pass",
    }


def concise_gate(scale, seed):
    """The concise router must never lose to serial SA at the same δ."""
    nq = scaled(250, scale, minimum=4)
    np_ = scaled(25_000, scale, minimum=40)
    delta = PAPER_DEFAULTS["sa_delta"]
    sharded = solve_sharded(
        make_problem(nq=nq, np_=np_, k=20, seed=seed),
        3,
        router="concise",
        delta=delta,
        backend="array",
    )
    sa = solve(
        make_problem(nq=nq, np_=np_, k=20, seed=seed),
        "san",
        delta=delta,
        backend="array",
    )
    if sharded.cost > sa.cost * (1 + 1e-9) + 1e-9:
        raise AssertionError(
            f"concise-router objective {sharded.cost} exceeds serial SA "
            f"{sa.cost} at delta={delta}"
        )
    return {
        "nq": nq,
        "np": np_,
        "delta": delta,
        "sharded_cost": sharded.cost,
        "sa_cost": sa.cost,
        "status": "pass",
    }


def geomean(values):
    return math.exp(sum(math.log(v) for v in values) / len(values))


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_shard.json")
    parser.add_argument(
        "--scale",
        type=float,
        default=0.05,
        help="linear scale on |Q| and |P| (default 0.05)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--points",
        type=int,
        default=3,
        help="how many Fig. 10 sweep points to run "
        "(default 3 = up to the paper-default |Q|)",
    )
    parser.add_argument("--shards", type=int, default=4)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument(
        "--min-scaling-efficiency",
        type=float,
        default=None,
        help="fail (exit 1) when the geomean of "
        "speedup / min(workers, cores) falls below "
        "this bound — the nightly gate (efficiency, "
        "not raw speedup, so it reads the same on "
        "1-core and 8-core runners)",
    )
    args = parser.parse_args(argv)

    sweep = NQ_SWEEP_PAPER[: max(1, args.points)]
    dropped = NQ_SWEEP_PAPER[len(sweep):]
    if dropped:
        print(
            f"[bench_shard] sweep truncated for runtime: skipping "
            f"paper |Q| in {list(dropped)} (re-run with --points 5)"
        )

    points = []
    for nq_paper in sweep:
        row = bench_point(nq_paper, args.scale, args.seed, args.shards, args.workers)
        points.append(row)
        print(
            f"[bench_shard] |Q|={row['nq']} |P|={row['np']}: serial "
            f"{row['serial_s']:.2f}s -> sharded {row['sharded_s']:.2f}s "
            f"({row['speedup']:.2f}x, cost ratio {row['cost_ratio']:.4f})"
        )

    exactness = exactness_gate(args.scale, args.seed, args.workers)
    print(f"[bench_shard] provider-disjoint exactness: " f"{exactness['status']}")
    concise = concise_gate(args.scale, args.seed)
    print(f"[bench_shard] concise router <= serial SA: " f"{concise['status']}")

    headline = points[-1]  # largest sweep point run
    report = {
        "workload": "fig10 (performance vs |Q|; k=80, |P|=100K paper "
                    "units), nearest router",
        "serial_baseline": "ida/array",
        "scale": args.scale,
        "seed": args.seed,
        "shards": args.shards,
        "workers": args.workers,
        "cpu_count": os.cpu_count(),
        "sweep_paper_nq": list(sweep),
        "sweep_dropped_paper_nq": list(dropped),
        "points": points,
        # Headline: the largest sweep point run — with the default
        # --points 3 that is the paper-default Fig. 10 configuration
        # (|Q| = 1000 paper units).
        "headline_speedup": headline["speedup"],
        "speedup_at_largest_point": headline["speedup"],
        "speedup_max": max(p["speedup"] for p in points),
        "speedup_geomean": geomean([p["speedup"] for p in points]),
        "scaling_efficiency_geomean": geomean(
            [p["scaling_efficiency"] for p in points]
        ),
        "scaling_efficiency_min": min(
            p["scaling_efficiency"] for p in points
        ),
        "cost_ratio_worst": max(p["cost_ratio"] for p in points),
        "provider_disjoint_exactness": exactness,
        "concise_vs_sa": concise,
    }
    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2)
    print(
        f"[bench_shard] speedup at largest point "
        f"{report['speedup_at_largest_point']:.2f}x (max "
        f"{report['speedup_max']:.2f}x, geomean "
        f"{report['speedup_geomean']:.2f}x, efficiency geomean "
        f"{report['scaling_efficiency_geomean']:.2f}) -> {args.out}"
    )
    if (
        args.min_scaling_efficiency is not None
        and report["scaling_efficiency_geomean"]
        < args.min_scaling_efficiency
    ):
        print(
            f"[bench_shard] FAIL: scaling-efficiency geomean "
            f"{report['scaling_efficiency_geomean']:.3f} < required "
            f"{args.min_scaling_efficiency:.3f}"
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
