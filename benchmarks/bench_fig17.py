"""Figure 17: approximation methods vs |P|.

Paper: SA's quality degrades as P densifies around each provider group;
CA is only mildly affected.
"""

import pytest

from benchmarks.helpers import APPROX_QUAD, DELTAS, bench_problem, solve_once

NP_SWEEP = (25_000, 50_000, 100_000, 150_000, 200_000)


@pytest.mark.benchmark(group="fig17-approx-vs-np")
@pytest.mark.parametrize("np_paper", NP_SWEEP)
@pytest.mark.parametrize("method", ("ida",) + APPROX_QUAD)
def bench_fig17(benchmark, method, np_paper):
    solve_once(
        benchmark,
        bench_problem(np_paper=np_paper),
        method,
        delta=DELTAS.get(method),
    )
