"""Figure 16: approximation methods vs |Q|.

Paper: CA beats SA throughout; CA quality drifts down slowly as more
providers compete around each customer group.
"""

import pytest

from benchmarks.helpers import APPROX_QUAD, DELTAS, bench_problem, solve_once

NQ_SWEEP = (250, 500, 1000, 2500, 5000)


@pytest.mark.benchmark(group="fig16-approx-vs-nq")
@pytest.mark.parametrize("nq", NQ_SWEEP)
@pytest.mark.parametrize("method", ("ida",) + APPROX_QUAD)
def bench_fig16(benchmark, method, nq):
    solve_once(benchmark, bench_problem(nq_paper=nq), method, delta=DELTAS.get(method))
