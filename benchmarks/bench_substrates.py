"""Substrate micro-benchmarks and design-choice ablations.

Not a paper figure — these quantify the building blocks (R-tree queries,
ANN grouping, PUA reuse, the Theorem 2 fast path) that DESIGN.md calls out,
so regressions in any layer are visible independently of the end-to-end
figures.
"""

import numpy as np
import pytest

from repro.core.ida import IDASolver
from repro.core.nia import NIASolver
from repro.datagen.workloads import make_problem
from repro.geometry.point import Point
from repro.rtree.ann import GroupedANN
from repro.rtree.queries import knn_search, range_search
from repro.rtree.tree import RTree


@pytest.fixture(scope="module")
def tree_and_points():
    rng = np.random.default_rng(0)
    pts = [Point(i, rng.random(2) * 1000) for i in range(5000)]
    return RTree.from_points(pts), pts


@pytest.mark.benchmark(group="substrate-rtree")
def bench_rtree_bulk_load(benchmark):
    rng = np.random.default_rng(1)
    pts = [Point(i, rng.random(2) * 1000) for i in range(5000)]
    benchmark(lambda: RTree.from_points(pts))


@pytest.mark.benchmark(group="substrate-rtree")
def bench_range_search(benchmark, tree_and_points):
    tree, _ = tree_and_points
    q = Point(99999, (500.0, 500.0))
    benchmark(lambda: range_search(tree, q, 50.0))


@pytest.mark.benchmark(group="substrate-rtree")
def bench_knn_search(benchmark, tree_and_points):
    tree, _ = tree_and_points
    q = Point(99999, (500.0, 500.0))
    benchmark(lambda: knn_search(tree, q, 100))


@pytest.mark.benchmark(group="substrate-ann")
@pytest.mark.parametrize("group_size", (1, 8))
def bench_ann_grouping_ablation(benchmark, tree_and_points, group_size):
    """group_size=1 disables Algorithm 6's shared traversal — the I/O
    delta is the optimization's value."""
    tree, _ = tree_and_points
    rng = np.random.default_rng(2)
    providers = [Point(i, rng.random(2) * 1000) for i in range(16)]

    def consume():
        tree.cold()
        ann = GroupedANN(tree, providers, group_size=group_size)
        for q in providers:
            for _ in range(50):
                ann.next_nn(q.pid)
        return tree.stats.faults

    faults = benchmark(consume)
    benchmark.extra_info["io_faults"] = faults


@pytest.mark.benchmark(group="ablation-pua")
@pytest.mark.parametrize("use_pua", (True, False), ids=["pua", "no-pua"])
def bench_pua_ablation(benchmark, use_pua):
    """Section 3.4.1's claim: reusing Dijkstra state across invalid paths
    saves work (compare dijkstra_runs in extra_info)."""
    problem = make_problem(nq=10, np_=1000, k=30, seed=3)
    problem.rtree()

    def run():
        solver = NIASolver(problem, use_pua=use_pua)
        solver.solve()
        return solver.stats

    stats = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["dijkstra_runs"] = stats.dijkstra_runs


@pytest.mark.benchmark(group="ablation-fast-path")
@pytest.mark.parametrize("use_fast", (True, False), ids=["thm2", "no-thm2"])
def bench_fast_path_ablation(benchmark, use_fast):
    """Theorem 2's value: a slack instance (k·|Q| > |P|) solves without a
    single Dijkstra when the fast path is on."""
    problem = make_problem(nq=10, np_=1000, k=150, seed=4)
    problem.rtree()

    def run():
        solver = IDASolver(problem, use_fast_path=use_fast)
        solver.solve()
        return solver.stats

    stats = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["fast_augments"] = stats.fast_path_augments
    benchmark.extra_info["dijkstra_runs"] = stats.dijkstra_runs
