"""Flow-kernel benchmark: reference vs columnar stack on Fig. 10.

Measures two things per sweep point:

* **end-to-end** — a full IDA solve (index/ANN supply + certification +
  flow kernel), comparing the *reference stack* (``dict`` flow kernel on
  the ``pointer`` R-tree) against the *columnar stack* (``array`` flow
  kernel on the ``packed`` R-tree).  This is the fused-pipeline number:
  since the bulk ``add_edges`` / ANN-column-streaming seams landed, the
  columnar stack must win end to end, not just inside the kernel
  (``end_to_end_geomean`` >= 1.0 is a repo invariant asserted in CI).
* **kernel replay** — the pure flow-kernel work: rebuild the residual
  network from the solve's frozen Esub edge set (one bulk ``add_edges``
  call per backend) and run the successive-shortest-path loop to
  completion.  This isolates the Dijkstra inner loop, dict vs array.

When the optional ``numba`` dependency imports, a third *compiled stack*
(``numba`` flow kernel on the ``packed`` R-tree) joins both measurements
— JIT compile cost is excluded by warming the kernels before any timed
region.  Without numba the ``numba`` block in the JSON records the skip
and its reason instead, so the artifact stays diffable either way.

All stacks must produce bit-identical matching costs and |Esub|; the
script asserts it and records the speedups in ``BENCH_kernel.json``.

End-to-end timings take the best of ``--repeats`` runs per stack
(interleaved), which reports the noise floor rather than whatever the
shared-runner scheduler did to a single run.

Usage::

    PYTHONPATH=src python benchmarks/bench_kernel.py \
        [--out BENCH_kernel.json] [--scale 0.05] [--seed 0] [--points 3]
        [--repeats 2] [--min-end-to-end-geomean 1.0]

The Fig. 10 sweep is |Q| ∈ {250, 500, 1000, 2500, 5000} (paper units) at
k = 80, |P| = 100K, scaled linearly.  ``--points`` truncates the sweep
(default 3, i.e. up to the paper-default |Q| = 1000 point) so the script
finishes in minutes; each dropped point is recorded in the JSON with the
reason it was dropped rather than silently omitted.
"""

from __future__ import annotations

import argparse
import json
import math
import time

import numpy as np

from repro.core.ida import IDASolver
from repro.datagen.workloads import make_problem
from repro.experiments.config import PAPER_DEFAULTS, scaled
from repro.flow.backend import get_backend
from repro.flow.numbakernel import NUMBA_AVAILABLE, warm_kernels

NQ_SWEEP_PAPER = (250, 500, 1000, 2500, 5000)
# End-to-end stacks: (label, flow backend, index backend).
STACKS = (
    ("reference", "dict", "pointer"),
    ("columnar", "array", "packed"),
)
# The optional JIT stack, included whenever numba imports (reported as
# skipped-with-reason otherwise so the artifact stays diffable).
NUMBA_STACK = ("compiled", "numba", "packed")
# Kernel replay isolates the flow seam only.
KERNEL_BACKENDS = ("dict", "array")


def _replay(backend_name, caps, weights, edges):
    """SSP to completion over a frozen Esub — the kernel-only workload."""
    backend = get_backend(backend_name)
    i_col = np.asarray([e[0] for e in edges], dtype=np.int64)
    j_col = np.asarray([e[1] for e in edges], dtype=np.int64)
    d_col = np.asarray([e[2] for e in edges], dtype=np.float64)
    started = time.perf_counter()
    net = backend.network(caps, weights)
    net.add_edges(i_col, j_col, d_col)
    gamma = net.gamma
    pops = 0
    while net.matched < gamma:
        state = backend.dijkstra(net)
        if not state.run():
            raise RuntimeError("kernel replay: sink unreachable in Esub")
        net.augment_with_state(state.path_nodes(), state.sp_cost, state)
        pops += state.pops
    elapsed = time.perf_counter() - started
    return elapsed, net.matching_cost(), pops


def _end_to_end_once(nq, np_, k, seed, flow, index):
    problem = make_problem(nq=nq, np_=np_, k=k, seed=seed)
    problem.rtree(index_backend=index)  # index build is setup, not work
    started = time.perf_counter()
    solver = IDASolver(problem, backend=flow, index_backend=index)
    matching = solver.solve()
    elapsed = time.perf_counter() - started
    return elapsed, matching, solver


def bench_point(nq_paper, scale, seed, repeats, stacks, kernel_backends):
    nq = scaled(nq_paper, scale, minimum=2)
    np_ = scaled(PAPER_DEFAULTS["np"], scale, minimum=50)
    k = PAPER_DEFAULTS["k"]
    row = {
        "nq_paper": nq_paper,
        "nq": nq,
        "np": np_,
        "k": k,
        "end_to_end_s": {},
        "kernel_s": {},
    }
    edges = None
    reference = None
    best = {label: math.inf for label, _, _ in stacks}
    for _ in range(max(1, repeats)):
        for label, flow, index in stacks:
            elapsed, matching, solver = _end_to_end_once(nq, np_, k, seed, flow, index)
            best[label] = min(best[label], elapsed)
            signature = (matching.cost, solver.stats.esub_edges)
            if reference is None:
                reference = signature
                edges = solver.net.edge_triples()
                caps = [q.capacity for q in solver.problem.providers]
                weights = [c.weight for c in solver.problem.customers]
                row["cost"] = matching.cost
                row["esub"] = solver.stats.esub_edges
            elif signature != reference:
                raise AssertionError(
                    f"stack divergence at nq={nq} ({label}): "
                    f"{signature} != {reference}"
                )
    for label, _, _ in stacks:
        row["end_to_end_s"][label] = best[label]
    replay_cost = None
    replay_pops = None
    row["kernel_pops"] = {}
    for name in kernel_backends:
        elapsed, cost, pops = _replay(name, caps, weights, edges)
        row["kernel_s"][name] = elapsed
        row["kernel_pops"][name] = pops
        if replay_cost is None:
            replay_cost, replay_pops = cost, pops
        elif cost != replay_cost or pops != replay_pops:
            raise AssertionError(
                f"kernel replay divergence at nq={nq}: "
                f"cost {cost} vs {replay_cost}, pops {pops} vs {replay_pops}"
            )
    row["kernel_speedup"] = row["kernel_s"]["dict"] / row["kernel_s"]["array"]
    row["end_to_end_speedup"] = (
        row["end_to_end_s"]["reference"] / row["end_to_end_s"]["columnar"]
    )
    if "compiled" in row["end_to_end_s"]:
        row["numba_end_to_end_speedup"] = (
            row["end_to_end_s"]["reference"] / row["end_to_end_s"]["compiled"]
        )
        row["numba_vs_array"] = (
            row["end_to_end_s"]["columnar"] / row["end_to_end_s"]["compiled"]
        )
        row["numba_kernel_speedup"] = (
            row["kernel_s"]["dict"] / row["kernel_s"]["numba"]
        )
    return row


def geomean(values):
    return math.exp(sum(math.log(v) for v in values) / len(values))


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_kernel.json")
    parser.add_argument(
        "--scale",
        type=float,
        default=0.05,
        help="linear scale on |Q| and |P| (default 0.05)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--points",
        type=int,
        default=3,
        help="how many Fig. 10 sweep points to run "
        "(default 3 = up to the paper-default |Q|)",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=2,
        help="end-to-end repetitions per stack; the best "
        "run is reported (default %(default)s)",
    )
    parser.add_argument(
        "--min-end-to-end-geomean",
        type=float,
        default=None,
        help="fail (exit 1) when the end-to-end geomean "
        "falls below this bound — the CI regression "
        "gate for the fused columnar pipeline",
    )
    parser.add_argument(
        "--backend",
        choices=("dict", "array", "numba"),
        default=None,
        help="request one extra backend explicitly; "
        "'numba' is attempted and recorded as "
        "skipped (with the reason) when the optional "
        "dependency is absent — dict/array are "
        "always measured",
    )
    parser.add_argument(
        "--min-numba-vs-array-geomean",
        type=float,
        default=None,
        help="fail (exit 1) when the numba/array "
        "end-to-end geomean falls below this bound "
        "(only evaluated when numba is available) — "
        "the perf-leg regression gate",
    )
    args = parser.parse_args(argv)

    stacks = list(STACKS)
    kernel_backends = list(KERNEL_BACKENDS)
    if NUMBA_AVAILABLE:
        # One-time JIT compilation outside every timed region: warm the
        # kernels on a toy instance first (cache=True makes later
        # processes skip this too).
        warm_started = time.perf_counter()
        warm_kernels()
        numba_block = {
            "status": "ok",
            "jit_warmup_s": time.perf_counter() - warm_started,
            "note": "compile cost excluded via warm-up + best-of-repeats",
        }
        stacks.append(NUMBA_STACK)
        kernel_backends.append("numba")
    else:
        numba_block = {
            "status": "skipped",
            "reason": "numba not importable; install the 'perf' extra "
            "(pip install repro-cca[perf]) to measure the "
            "compiled stack",
        }
        if args.backend == "numba":
            print(f"[bench_kernel] numba skipped: {numba_block['reason']}")

    sweep = NQ_SWEEP_PAPER[: max(1, args.points)]
    dropped = [
        {
            "nq_paper": nq_paper,
            "reason": (
                f"runtime budget: --points {args.points} truncates the "
                f"Fig. 10 sweep (re-run with --points 5 for the full one)"
            ),
        }
        for nq_paper in NQ_SWEEP_PAPER[len(sweep):]
    ]
    for item in dropped:
        print(
            f"[bench_kernel] dropping paper |Q|={item['nq_paper']}: "
            f"{item['reason']}"
        )
    points = []
    for nq_paper in sweep:
        row = bench_point(
            nq_paper,
            args.scale,
            args.seed,
            args.repeats,
            stacks,
            kernel_backends,
        )
        points.append(row)
        print(
            f"[bench_kernel] |Q|={row['nq']} |P|={row['np']}: "
            f"kernel {row['kernel_s']['dict']:.2f}s -> "
            f"{row['kernel_s']['array']:.2f}s "
            f"({row['kernel_speedup']:.2f}x), end-to-end "
            f"{row['end_to_end_s']['reference']:.2f}s -> "
            f"{row['end_to_end_s']['columnar']:.2f}s "
            f"({row['end_to_end_speedup']:.2f}x)"
        )
        if "numba_vs_array" in row:
            print(
                f"[bench_kernel]   numba end-to-end "
                f"{row['end_to_end_s']['compiled']:.2f}s "
                f"({row['numba_end_to_end_speedup']:.2f}x vs dict, "
                f"{row['numba_vs_array']:.2f}x vs array), kernel "
                f"{row['kernel_s']['numba']:.2f}s "
                f"({row['numba_kernel_speedup']:.2f}x)"
            )

    end_to_end_geomean = geomean([p["end_to_end_speedup"] for p in points])
    if NUMBA_AVAILABLE:
        numba_block["end_to_end_geomean"] = geomean(
            [p["numba_end_to_end_speedup"] for p in points]
        )
        numba_block["vs_array_geomean"] = geomean([p["numba_vs_array"] for p in points])
        numba_block["vs_array_min"] = min(p["numba_vs_array"] for p in points)
        numba_block["kernel_speedup_geomean"] = geomean(
            [p["numba_kernel_speedup"] for p in points]
        )
    report = {
        "workload": "fig10 (performance vs |Q|; k=80, |P|=100K paper units)",
        "stacks": {
            label: {"flow": flow, "index": index}
            for label, flow, index in stacks
        },
        "kernel_backends": list(kernel_backends),
        "scale": args.scale,
        "seed": args.seed,
        "repeats": args.repeats,
        "sweep_paper_nq": list(sweep),
        "sweep_dropped": dropped,
        "points": points,
        "numba": numba_block,
        "kernel_speedup_geomean": geomean(
            [p["kernel_speedup"] for p in points]
        ),
        "kernel_speedup_max": max(p["kernel_speedup"] for p in points),
        "end_to_end_geomean": end_to_end_geomean,
        "end_to_end_speedup_min": min(
            p["end_to_end_speedup"] for p in points
        ),
    }
    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2)
    print(
        f"[bench_kernel] kernel speedup geomean "
        f"{report['kernel_speedup_geomean']:.2f}x (max "
        f"{report['kernel_speedup_max']:.2f}x), end-to-end geomean "
        f"{end_to_end_geomean:.2f}x -> {args.out}"
    )
    failed = False
    if (
        args.min_end_to_end_geomean is not None
        and end_to_end_geomean < args.min_end_to_end_geomean
    ):
        print(
            f"[bench_kernel] FAIL: end-to-end geomean "
            f"{end_to_end_geomean:.3f} < required "
            f"{args.min_end_to_end_geomean:.3f}"
        )
        failed = True
    if args.min_numba_vs_array_geomean is not None and NUMBA_AVAILABLE:
        vs_array = numba_block["vs_array_geomean"]
        if vs_array < args.min_numba_vs_array_geomean:
            print(
                f"[bench_kernel] FAIL: numba/array end-to-end geomean "
                f"{vs_array:.3f} < required "
                f"{args.min_numba_vs_array_geomean:.3f}"
            )
            failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
