"""Flow-kernel benchmark: reference vs columnar stack on Fig. 10.

Measures two things per sweep point:

* **end-to-end** — a full IDA solve (index/ANN supply + certification +
  flow kernel), comparing the *reference stack* (``dict`` flow kernel on
  the ``pointer`` R-tree) against the *columnar stack* (``array`` flow
  kernel on the ``packed`` R-tree).  This is the fused-pipeline number:
  since the bulk ``add_edges`` / ANN-column-streaming seams landed, the
  columnar stack must win end to end, not just inside the kernel
  (``end_to_end_geomean`` >= 1.0 is a repo invariant asserted in CI).
* **kernel replay** — the pure flow-kernel work: rebuild the residual
  network from the solve's frozen Esub edge set (one bulk ``add_edges``
  call per backend) and run the successive-shortest-path loop to
  completion.  This isolates the Dijkstra inner loop, dict vs array.

All stacks must produce bit-identical matching costs and |Esub|; the
script asserts it and records the speedups in ``BENCH_kernel.json``.

End-to-end timings take the best of ``--repeats`` runs per stack
(interleaved), which reports the noise floor rather than whatever the
shared-runner scheduler did to a single run.

Usage::

    PYTHONPATH=src python benchmarks/bench_kernel.py \
        [--out BENCH_kernel.json] [--scale 0.05] [--seed 0] [--points 3]
        [--repeats 2] [--min-end-to-end-geomean 1.0]

The Fig. 10 sweep is |Q| ∈ {250, 500, 1000, 2500, 5000} (paper units) at
k = 80, |P| = 100K, scaled linearly.  ``--points`` truncates the sweep
(default 3, i.e. up to the paper-default |Q| = 1000 point) so the script
finishes in minutes; each dropped point is recorded in the JSON with the
reason it was dropped rather than silently omitted.
"""

from __future__ import annotations

import argparse
import json
import math
import time

import numpy as np

from repro.core.ida import IDASolver
from repro.datagen.workloads import make_problem
from repro.experiments.config import PAPER_DEFAULTS, scaled
from repro.flow.backend import get_backend

NQ_SWEEP_PAPER = (250, 500, 1000, 2500, 5000)
# End-to-end stacks: (label, flow backend, index backend).
STACKS = (
    ("reference", "dict", "pointer"),
    ("columnar", "array", "packed"),
)
# Kernel replay isolates the flow seam only.
KERNEL_BACKENDS = ("dict", "array")


def _replay(backend_name, caps, weights, edges):
    """SSP to completion over a frozen Esub — the kernel-only workload."""
    backend = get_backend(backend_name)
    i_col = np.asarray([e[0] for e in edges], dtype=np.int64)
    j_col = np.asarray([e[1] for e in edges], dtype=np.int64)
    d_col = np.asarray([e[2] for e in edges], dtype=np.float64)
    started = time.perf_counter()
    net = backend.network(caps, weights)
    net.add_edges(i_col, j_col, d_col)
    gamma = net.gamma
    pops = 0
    while net.matched < gamma:
        state = backend.dijkstra(net)
        if not state.run():
            raise RuntimeError("kernel replay: sink unreachable in Esub")
        net.augment_with_state(state.path_nodes(), state.sp_cost, state)
        pops += state.pops
    elapsed = time.perf_counter() - started
    return elapsed, net.matching_cost(), pops


def _end_to_end_once(nq, np_, k, seed, flow, index):
    problem = make_problem(nq=nq, np_=np_, k=k, seed=seed)
    problem.rtree(index_backend=index)  # index build is setup, not work
    started = time.perf_counter()
    solver = IDASolver(problem, backend=flow, index_backend=index)
    matching = solver.solve()
    elapsed = time.perf_counter() - started
    return elapsed, matching, solver


def bench_point(nq_paper, scale, seed, repeats):
    nq = scaled(nq_paper, scale, minimum=2)
    np_ = scaled(PAPER_DEFAULTS["np"], scale, minimum=50)
    k = PAPER_DEFAULTS["k"]
    row = {
        "nq_paper": nq_paper,
        "nq": nq,
        "np": np_,
        "k": k,
        "end_to_end_s": {},
        "kernel_s": {},
    }
    edges = None
    reference = None
    best = {label: math.inf for label, _, _ in STACKS}
    for _ in range(max(1, repeats)):
        for label, flow, index in STACKS:
            elapsed, matching, solver = _end_to_end_once(
                nq, np_, k, seed, flow, index
            )
            best[label] = min(best[label], elapsed)
            signature = (matching.cost, solver.stats.esub_edges)
            if reference is None:
                reference = signature
                edges = solver.net.edge_triples()
                caps = [q.capacity for q in solver.problem.providers]
                weights = [c.weight for c in solver.problem.customers]
                row["cost"] = matching.cost
                row["esub"] = solver.stats.esub_edges
            elif signature != reference:
                raise AssertionError(
                    f"stack divergence at nq={nq} ({label}): "
                    f"{signature} != {reference}"
                )
    for label, _, _ in STACKS:
        row["end_to_end_s"][label] = best[label]
    replay_cost = None
    replay_pops = None
    row["kernel_pops"] = {}
    for name in KERNEL_BACKENDS:
        elapsed, cost, pops = _replay(name, caps, weights, edges)
        row["kernel_s"][name] = elapsed
        row["kernel_pops"][name] = pops
        if replay_cost is None:
            replay_cost, replay_pops = cost, pops
        elif cost != replay_cost or pops != replay_pops:
            raise AssertionError(
                f"kernel replay divergence at nq={nq}: "
                f"cost {cost} vs {replay_cost}, pops {pops} vs {replay_pops}"
            )
    row["kernel_speedup"] = row["kernel_s"]["dict"] / row["kernel_s"]["array"]
    row["end_to_end_speedup"] = (
        row["end_to_end_s"]["reference"] / row["end_to_end_s"]["columnar"]
    )
    return row


def geomean(values):
    return math.exp(sum(math.log(v) for v in values) / len(values))


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_kernel.json")
    parser.add_argument("--scale", type=float, default=0.05,
                        help="linear scale on |Q| and |P| (default 0.05)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--points", type=int, default=3,
                        help="how many Fig. 10 sweep points to run "
                             "(default 3 = up to the paper-default |Q|)")
    parser.add_argument("--repeats", type=int, default=2,
                        help="end-to-end repetitions per stack; the best "
                             "run is reported (default %(default)s)")
    parser.add_argument("--min-end-to-end-geomean", type=float, default=None,
                        help="fail (exit 1) when the end-to-end geomean "
                             "falls below this bound — the CI regression "
                             "gate for the fused columnar pipeline")
    args = parser.parse_args(argv)

    sweep = NQ_SWEEP_PAPER[: max(1, args.points)]
    dropped = [
        {
            "nq_paper": nq_paper,
            "reason": (
                f"runtime budget: --points {args.points} truncates the "
                f"Fig. 10 sweep (re-run with --points 5 for the full one)"
            ),
        }
        for nq_paper in NQ_SWEEP_PAPER[len(sweep):]
    ]
    for item in dropped:
        print(f"[bench_kernel] dropping paper |Q|={item['nq_paper']}: "
              f"{item['reason']}")
    points = []
    for nq_paper in sweep:
        row = bench_point(nq_paper, args.scale, args.seed, args.repeats)
        points.append(row)
        print(
            f"[bench_kernel] |Q|={row['nq']} |P|={row['np']}: "
            f"kernel {row['kernel_s']['dict']:.2f}s -> "
            f"{row['kernel_s']['array']:.2f}s "
            f"({row['kernel_speedup']:.2f}x), end-to-end "
            f"{row['end_to_end_s']['reference']:.2f}s -> "
            f"{row['end_to_end_s']['columnar']:.2f}s "
            f"({row['end_to_end_speedup']:.2f}x)"
        )

    end_to_end_geomean = geomean([p["end_to_end_speedup"] for p in points])
    report = {
        "workload": "fig10 (performance vs |Q|; k=80, |P|=100K paper units)",
        "stacks": {
            label: {"flow": flow, "index": index}
            for label, flow, index in STACKS
        },
        "kernel_backends": list(KERNEL_BACKENDS),
        "scale": args.scale,
        "seed": args.seed,
        "repeats": args.repeats,
        "sweep_paper_nq": list(sweep),
        "sweep_dropped": dropped,
        "points": points,
        "kernel_speedup_geomean": geomean(
            [p["kernel_speedup"] for p in points]
        ),
        "kernel_speedup_max": max(p["kernel_speedup"] for p in points),
        "end_to_end_geomean": end_to_end_geomean,
        "end_to_end_speedup_min": min(
            p["end_to_end_speedup"] for p in points
        ),
    }
    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2)
    print(
        f"[bench_kernel] kernel speedup geomean "
        f"{report['kernel_speedup_geomean']:.2f}x (max "
        f"{report['kernel_speedup_max']:.2f}x), end-to-end geomean "
        f"{end_to_end_geomean:.2f}x -> {args.out}"
    )
    if (
        args.min_end_to_end_geomean is not None
        and end_to_end_geomean < args.min_end_to_end_geomean
    ):
        print(
            f"[bench_kernel] FAIL: end-to-end geomean "
            f"{end_to_end_geomean:.3f} < required "
            f"{args.min_end_to_end_geomean:.3f}"
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
