"""Flow-kernel benchmark: dict vs array backend on the Fig. 10 workload.

Measures two things per sweep point, for both flow backends:

* **end-to-end** — a full IDA solve (R-tree ANN supply + certification +
  flow kernel).  At small scales this is index-bound, so the backends
  roughly tie.
* **kernel replay** — the pure flow-kernel work: rebuild the residual
  network from the solve's frozen Esub edge set and run the successive
  shortest path loop (γ potential-aware Dijkstras + augmentations) to
  completion.  This isolates the Dijkstra inner loop the array kernel
  exists for.

Both backends must produce bit-identical matching costs; the script
asserts it and records the speedups in ``BENCH_kernel.json``.

Usage::

    PYTHONPATH=src python benchmarks/bench_kernel.py \
        [--out BENCH_kernel.json] [--scale 0.05] [--seed 0] [--points 3]

The Fig. 10 sweep is |Q| ∈ {250, 500, 1000, 2500, 5000} (paper units) at
k = 80, |P| = 100K, scaled linearly.  ``--points`` truncates the sweep
(default 3, i.e. up to the paper-default |Q| = 1000 point) so the script
finishes in minutes; the truncation is recorded in the JSON rather than
silently hidden.
"""

from __future__ import annotations

import argparse
import json
import math
import time

from repro.core.ida import IDASolver
from repro.datagen.workloads import make_problem
from repro.experiments.config import PAPER_DEFAULTS, scaled
from repro.flow.backend import get_backend

NQ_SWEEP_PAPER = (250, 500, 1000, 2500, 5000)
BACKEND_ORDER = ("dict", "array")


def _replay(backend_name, caps, weights, edges):
    """SSP to completion over a frozen Esub — the kernel-only workload."""
    backend = get_backend(backend_name)
    started = time.perf_counter()
    net = backend.network(caps, weights)
    for i, j, d in edges:
        net.add_edge(i, j, d)
    gamma = net.gamma
    pops = 0
    while net.matched < gamma:
        state = backend.dijkstra(net)
        if not state.run():
            raise RuntimeError("kernel replay: sink unreachable in Esub")
        net.augment_with_state(state.path_nodes(), state.sp_cost, state)
        pops += state.pops
    elapsed = time.perf_counter() - started
    return elapsed, net.matching_cost(), pops


def bench_point(nq_paper, scale, seed):
    nq = scaled(nq_paper, scale, minimum=2)
    np_ = scaled(PAPER_DEFAULTS["np"], scale, minimum=50)
    k = PAPER_DEFAULTS["k"]
    row = {
        "nq_paper": nq_paper,
        "nq": nq,
        "np": np_,
        "k": k,
        "end_to_end_s": {},
        "kernel_s": {},
    }
    edges = None
    reference = None
    for name in BACKEND_ORDER:
        problem = make_problem(nq=nq, np_=np_, k=k, seed=seed)
        problem.rtree()  # index construction is setup, not measured work
        started = time.perf_counter()
        solver = IDASolver(problem, backend=name)
        matching = solver.solve()
        row["end_to_end_s"][name] = time.perf_counter() - started
        signature = (matching.cost, solver.stats.esub_edges)
        if reference is None:
            reference = signature
            edges = solver.net.edge_triples()
            caps = [q.capacity for q in problem.providers]
            weights = [c.weight for c in problem.customers]
            row["cost"] = matching.cost
            row["esub"] = solver.stats.esub_edges
        elif signature != reference:
            raise AssertionError(
                f"backend divergence at nq={nq}: {signature} != {reference}"
            )
    replay_cost = None
    replay_pops = None
    row["kernel_pops"] = {}
    for name in BACKEND_ORDER:
        elapsed, cost, pops = _replay(name, caps, weights, edges)
        row["kernel_s"][name] = elapsed
        row["kernel_pops"][name] = pops
        if replay_cost is None:
            replay_cost, replay_pops = cost, pops
        elif cost != replay_cost or pops != replay_pops:
            raise AssertionError(
                f"kernel replay divergence at nq={nq}: "
                f"cost {cost} vs {replay_cost}, pops {pops} vs {replay_pops}"
            )
    row["kernel_speedup"] = row["kernel_s"]["dict"] / row["kernel_s"]["array"]
    row["end_to_end_speedup"] = (
        row["end_to_end_s"]["dict"] / row["end_to_end_s"]["array"]
    )
    return row


def geomean(values):
    return math.exp(sum(math.log(v) for v in values) / len(values))


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_kernel.json")
    parser.add_argument("--scale", type=float, default=0.05,
                        help="linear scale on |Q| and |P| (default 0.05)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--points", type=int, default=3,
                        help="how many Fig. 10 sweep points to run "
                             "(default 3 = up to the paper-default |Q|)")
    args = parser.parse_args(argv)

    sweep = NQ_SWEEP_PAPER[: max(1, args.points)]
    dropped = NQ_SWEEP_PAPER[len(sweep):]
    if dropped:
        print(f"[bench_kernel] sweep truncated for runtime: skipping "
              f"paper |Q| in {list(dropped)} (re-run with --points 5)")
    points = []
    for nq_paper in sweep:
        row = bench_point(nq_paper, args.scale, args.seed)
        points.append(row)
        print(
            f"[bench_kernel] |Q|={row['nq']} |P|={row['np']}: "
            f"kernel {row['kernel_s']['dict']:.2f}s -> "
            f"{row['kernel_s']['array']:.2f}s "
            f"({row['kernel_speedup']:.2f}x), end-to-end "
            f"{row['end_to_end_speedup']:.2f}x"
        )

    report = {
        "workload": "fig10 (performance vs |Q|; k=80, |P|=100K paper units)",
        "backends": list(BACKEND_ORDER),
        "scale": args.scale,
        "seed": args.seed,
        "sweep_paper_nq": list(sweep),
        "sweep_dropped_paper_nq": list(dropped),
        "points": points,
        "kernel_speedup_geomean": geomean(
            [p["kernel_speedup"] for p in points]
        ),
        "kernel_speedup_max": max(p["kernel_speedup"] for p in points),
        "end_to_end_speedup_geomean": geomean(
            [p["end_to_end_speedup"] for p in points]
        ),
    }
    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2)
    print(
        f"[bench_kernel] kernel speedup geomean "
        f"{report['kernel_speedup_geomean']:.2f}x (max "
        f"{report['kernel_speedup_max']:.2f}x) -> {args.out}"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
