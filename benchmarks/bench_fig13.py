"""Figure 13: exact methods across distribution combinations.

Paper: UvsU / UvsC / CvsU / CvsC at defaults; mismatched distributions
(UvsC, CvsU) blow up the explored subgraph and runtime.
"""

import pytest

from benchmarks.helpers import EXACT_TRIO, bench_problem, solve_once

COMBOS = (
    ("UvsU", "uniform", "uniform"),
    ("UvsC", "uniform", "clustered"),
    ("CvsU", "clustered", "uniform"),
    ("CvsC", "clustered", "clustered"),
)


@pytest.mark.benchmark(group="fig13-distributions")
@pytest.mark.parametrize("combo", COMBOS, ids=lambda c: c[0])
@pytest.mark.parametrize("method", EXACT_TRIO)
def bench_fig13(benchmark, method, combo):
    _, dist_q, dist_p = combo
    solve_once(benchmark, bench_problem(dist_q=dist_q, dist_p=dist_p), method)
