"""Figure 8: CPU time vs k on a small instance where SSPA is feasible.

Paper: |Q|=250, |P|=25K, k in {20..320}; SSPA is 1-3 orders of magnitude
slower than the incremental algorithms.
"""

import pytest

from benchmarks.helpers import EXACT_TRIO, K_SWEEP, bench_problem, solve_once


def fig8_problem(k):
    return bench_problem(nq_paper=250, np_paper=25_000, k=k, scale=0.02)


@pytest.mark.benchmark(group="fig8-cpu-vs-k")
@pytest.mark.parametrize("k", K_SWEEP)
@pytest.mark.parametrize("method", ("sspa",) + EXACT_TRIO)
def bench_fig8(benchmark, method, k):
    solve_once(benchmark, fig8_problem(k), method)
