"""Figure 18: approximation methods across distribution combinations.

Paper: CA is fastest everywhere and near-optimal; SA and CA converge in
quality on mismatched (UvsC / CvsU) distributions.
"""

import pytest

from benchmarks.helpers import APPROX_QUAD, DELTAS, bench_problem, solve_once

COMBOS = (
    ("UvsU", "uniform", "uniform"),
    ("UvsC", "uniform", "clustered"),
    ("CvsU", "clustered", "uniform"),
    ("CvsC", "clustered", "clustered"),
)


@pytest.mark.benchmark(group="fig18-approx-distributions")
@pytest.mark.parametrize("combo", COMBOS, ids=lambda c: c[0])
@pytest.mark.parametrize("method", ("ida",) + APPROX_QUAD)
def bench_fig18(benchmark, method, combo):
    _, dist_q, dist_p = combo
    solve_once(
        benchmark,
        bench_problem(dist_q=dist_q, dist_p=dist_p),
        method,
        delta=DELTAS.get(method),
    )
