"""Figure 12: mixed (randomized) provider capacities.

Paper: k drawn uniformly from widening ranges; trends match the uniform-k
experiment of Figure 9.
"""

import pytest

from benchmarks.helpers import EXACT_TRIO, bench_problem, solve_once

MIXED_K = ((10, 30), (20, 60), (40, 120), (80, 240), (160, 480))


@pytest.mark.benchmark(group="fig12-mixed-k")
@pytest.mark.parametrize("k_range", MIXED_K, ids=lambda r: f"{r[0]}~{r[1]}")
@pytest.mark.parametrize("method", EXACT_TRIO)
def bench_fig12(benchmark, method, k_range):
    solve_once(benchmark, bench_problem(k=k_range), method)
