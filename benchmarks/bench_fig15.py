"""Figure 15: approximation methods vs capacity k.

Paper: quality ratio improves as k grows (absolute costs rise while the
fixed-δ grouping error stays put); CA more robust than SA.
"""

import pytest

from benchmarks.helpers import APPROX_QUAD, DELTAS, K_SWEEP, bench_problem, solve_once


@pytest.mark.benchmark(group="fig15-approx-vs-k")
@pytest.mark.parametrize("k", K_SWEEP)
@pytest.mark.parametrize("method", ("ida",) + APPROX_QUAD)
def bench_fig15(benchmark, method, k):
    solve_once(benchmark, bench_problem(k=k), method, delta=DELTAS.get(method))
