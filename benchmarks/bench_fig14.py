"""Figure 14: approximation quality and time vs the δ dial.

Paper: δ in {10..160}; both error and runtime fall as δ grows; CA
dominates SA except at the smallest δ.  The ``cost`` extra-info column is
the Figure 14(a) quality series (divide by IDA's cost).
"""

import pytest

from benchmarks.helpers import APPROX_QUAD, bench_problem, solve_once

DELTA_SWEEP = (10.0, 20.0, 40.0, 80.0, 160.0)


@pytest.mark.benchmark(group="fig14-vs-delta")
@pytest.mark.parametrize("delta", DELTA_SWEEP, ids=lambda d: f"d{d:g}")
@pytest.mark.parametrize("method", APPROX_QUAD)
def bench_fig14(benchmark, method, delta):
    solve_once(benchmark, bench_problem(), method, delta=delta)


@pytest.mark.benchmark(group="fig14-vs-delta")
def bench_fig14_ida_reference(benchmark):
    solve_once(benchmark, bench_problem(), "ida")
