"""Figure 9: subgraph size and total time vs capacity k (exact methods).

Paper: |Q|=1K, |P|=100K; |Esub| is a small fraction of the 10^8-edge full
graph; IDA explores the fewest edges while k·|Q| < |P|.  The per-run
``esub`` extra-info column carries the Figure 9(a) series.
"""

import pytest

from benchmarks.helpers import EXACT_TRIO, K_SWEEP, bench_problem, solve_once


@pytest.mark.benchmark(group="fig9-vs-k")
@pytest.mark.parametrize("k", K_SWEEP)
@pytest.mark.parametrize("method", EXACT_TRIO)
def bench_fig9(benchmark, method, k):
    solve_once(benchmark, bench_problem(k=k), method)
