"""Shared workload construction for the per-figure benchmarks.

Benchmarks run at ``BENCH_SCALE`` (a further reduction from the CLI's
default scale) so the whole suite finishes in minutes on one core while
preserving the ``k·|Q| ⋚ |P|`` regime that drives every trend in Section 5.
Problems are cached per parameter set: building the R-tree is setup, not
the measured work.
"""

from __future__ import annotations

from functools import lru_cache

from repro.core.problem import CCAProblem
from repro.datagen.workloads import make_problem
from repro.experiments.config import BENCH_SCALE, PAPER_DEFAULTS, scaled
from repro.experiments.harness import run_method

EXACT_TRIO = ("ria", "nia", "ida")
APPROX_QUAD = ("san", "sae", "can", "cae")
K_SWEEP = (20, 40, 80, 160, 320)
# The paper's δ sweet spots, from the single source of truth in
# experiments.config (Table 2) — don't restate the literals here.
DELTAS = {
    "san": PAPER_DEFAULTS["sa_delta"],
    "sae": PAPER_DEFAULTS["sa_delta"],
    "can": PAPER_DEFAULTS["ca_delta"],
    "cae": PAPER_DEFAULTS["ca_delta"],
}


@lru_cache(maxsize=64)
def bench_problem(  # noqa: the bench_ prefix is for humans, not pytest
    nq_paper: int = PAPER_DEFAULTS["nq"],
    np_paper: int = PAPER_DEFAULTS["np"],
    k=PAPER_DEFAULTS["k"],
    dist_q: str = "clustered",
    dist_p: str = "clustered",
    seed: int = 0,
    scale: float = BENCH_SCALE,
) -> CCAProblem:
    problem = make_problem(
        nq=scaled(nq_paper, scale, minimum=2),
        np_=scaled(np_paper, scale, minimum=50),
        k=k,
        dist_q=dist_q,
        dist_p=dist_p,
        seed=seed,
    )
    problem.rtree()  # index construction is setup, not measured work
    return problem


# The bench_ prefix matches pytest's collection pattern; mark the helper
# itself as not-a-test so importing files don't collect (and skip) it.
bench_problem.__test__ = False


def solve_once(benchmark, problem, method, delta=None):
    """Benchmark one solve (a single round: solves are deterministic and
    expensive; statistical repetition adds nothing but wall time)."""
    result = benchmark.pedantic(
        run_method,
        args=(problem, method),
        kwargs={"delta": delta} if delta is not None else {},
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info.update(
        esub=result.esub,
        io_faults=result.io_faults,
        charged_io_s=round(result.io_s, 3),
        cost=round(result.cost, 1),
        gamma=result.gamma,
    )
    return result
