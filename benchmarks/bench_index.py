"""Index-backend benchmark: pointer vs packed R-tree on Fig. 10's default.

Measures three things at the Fig. 10 paper-default point (|Q| = 1000,
|P| = 100K paper units, k = 80, scaled linearly):

* **build** — bulk-loading the customer index (STR both ways; the packed
  loader writes flat arrays instead of node objects).
* **NN-stream throughput** — draining the Algorithm 6 grouped incremental
  ANN streams round-robin across every provider, at several group sizes.
  This is the edge-supply hot path NIA/IDA/SM sit on, and the number the
  packed backend exists for.
* **end-to-end IDA** — a full solve, where the flow kernel and
  certification share the bill with the index.

Correctness gates (asserted, CI-safe): both backends must report the
**identical NN sequence**, charge identical page faults, and produce
bit-identical IDA costs.  Speedup thresholds are *recorded* in
``BENCH_index.json``, not asserted — shared CI runners are too noisy for
timing gates (same policy as bench_kernel/bench_shard).

Usage::

    PYTHONPATH=src python benchmarks/bench_index.py \
        [--out BENCH_index.json] [--scale 0.05] [--seed 0] \
        [--draws 400] [--repeats 3]
"""

from __future__ import annotations

import argparse
import json
import math
import time

from repro.core.ida import IDASolver
from repro.datagen.workloads import make_problem
from repro.experiments.config import PAPER_DEFAULTS, scaled
from repro.rtree.backend import get_index_backend, index_info

BACKEND_ORDER = ("pointer", "packed")
GROUP_SIZES = (1, 8, 32)  # paper default 8, plus the ablation endpoints


def geomean(values):
    return math.exp(sum(math.log(v) for v in values) / len(values))


def bench_build(problem, repeats):
    """Best-of-N bulk-load time per backend (same points, cold manager)."""
    points = problem.customer_points()
    out = {}
    infos = {}
    for name in BACKEND_ORDER:
        backend = get_index_backend(name)
        best = None
        for _ in range(repeats):
            started = time.perf_counter()
            tree = backend.build(
                points,
                page_size=problem.page_size,
                buffer_fraction=problem.buffer_fraction,
            )
            elapsed = time.perf_counter() - started
            best = elapsed if best is None else min(best, elapsed)
        out[name] = best
        infos[name] = index_info(tree)
    if (infos["pointer"]["pages"], infos["pointer"]["height"]) != (
        infos["packed"]["pages"],
        infos["packed"]["height"],
    ):
        raise AssertionError(f"structure divergence: {infos}")
    return out, infos["packed"]


def bench_streams(problem, group_size, draws, repeats):
    """Round-robin NN-stream drain; asserts identical sequences/faults."""
    providers = [q.point for q in problem.providers]
    row = {"group_size": group_size, "seconds": {}, "throughput": {}}
    reference = None
    for name in BACKEND_ORDER:
        tree = problem.rtree(index_backend=name)
        backend = get_index_backend(name)
        best = None
        for _ in range(repeats):
            tree.cold()
            started = time.perf_counter()
            ann = backend.grouped_ann(tree, providers, group_size=group_size)
            sequence = []
            for _ in range(draws):
                for q in providers:
                    p = ann.next_nn(q.pid)
                    if p is not None:
                        sequence.append(p.pid)
            elapsed = time.perf_counter() - started
            best = elapsed if best is None else min(best, elapsed)
        signature = (sequence, tree.stats.faults)
        if reference is None:
            reference = signature
            row["nns"] = len(sequence)
            row["faults"] = tree.stats.faults
        elif signature != reference:
            raise AssertionError(
                f"NN-stream divergence at group_size={group_size}: "
                f"faults {tree.stats.faults} vs {reference[1]}"
            )
        row["seconds"][name] = best
        row["throughput"][name] = len(sequence) / best
    row["speedup"] = row["seconds"]["pointer"] / row["seconds"]["packed"]
    return row


def bench_end_to_end(problem_factory, flow_backend):
    """Full IDA solve per index backend; asserts bit-identical results."""
    out = {"seconds": {}}
    reference = None
    for name in BACKEND_ORDER:
        problem = problem_factory()
        problem.rtree(index_backend=name)  # setup, not measured work
        started = time.perf_counter()
        solver = IDASolver(problem, backend=flow_backend, index_backend=name)
        matching = solver.solve()
        out["seconds"][name] = time.perf_counter() - started
        signature = (
            matching.cost,
            solver.stats.esub_edges,
            solver.stats.io.faults,
        )
        if reference is None:
            reference = signature
            out["cost"] = matching.cost
            out["esub"] = solver.stats.esub_edges
            out["io_faults"] = solver.stats.io.faults
        elif signature != reference:
            raise AssertionError(f"end-to-end divergence: {signature} != {reference}")
    out["speedup"] = out["seconds"]["pointer"] / out["seconds"]["packed"]
    return out


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_index.json")
    parser.add_argument(
        "--scale",
        type=float,
        default=0.05,
        help="linear scale on |Q| and |P| (default 0.05)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--draws",
        type=int,
        default=400,
        help="NNs drawn per provider per stream drain " "(default %(default)s)",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=3,
        help="timing repeats, best-of (default %(default)s)",
    )
    parser.add_argument(
        "--flow-backend",
        default="array",
        help="flow kernel for the end-to-end solve "
        "(default %(default)s, so index work is not "
        "drowned by the dict kernel)",
    )
    args = parser.parse_args(argv)

    nq = scaled(PAPER_DEFAULTS["nq"], args.scale, minimum=2)
    np_ = scaled(PAPER_DEFAULTS["np"], args.scale, minimum=50)
    k = PAPER_DEFAULTS["k"]
    draws = min(args.draws, np_)

    def problem_factory():
        return make_problem(nq=nq, np_=np_, k=k, seed=args.seed)

    problem = problem_factory()
    print(
        f"[bench_index] fig10 paper-default point: |Q|={nq} |P|={np_} "
        f"k={k} (scale {args.scale})"
    )

    build_s, structure = bench_build(problem, args.repeats)
    print(
        f"[bench_index] build: pointer {build_s['pointer']:.3f}s, "
        f"packed {build_s['packed']:.3f}s "
        f"({build_s['pointer'] / build_s['packed']:.2f}x); "
        f"pages={structure['pages']} height={structure['height']}"
    )

    stream_rows = []
    for group_size in GROUP_SIZES:
        row = bench_streams(problem, group_size, draws, args.repeats)
        stream_rows.append(row)
        print(
            f"[bench_index] ann group_size={group_size}: "
            f"{row['seconds']['pointer']:.3f}s -> "
            f"{row['seconds']['packed']:.3f}s "
            f"({row['speedup']:.2f}x, {row['nns']} NNs, "
            f"{row['faults']} faults)"
        )

    end_to_end = bench_end_to_end(problem_factory, args.flow_backend)
    print(
        f"[bench_index] end-to-end ida/{args.flow_backend}: "
        f"{end_to_end['seconds']['pointer']:.2f}s -> "
        f"{end_to_end['seconds']['packed']:.2f}s "
        f"({end_to_end['speedup']:.2f}x)"
    )

    report = {
        "workload": "fig10 paper-default point (|Q|=1000, |P|=100K paper "
        "units, k=80)",
        "backends": list(BACKEND_ORDER),
        "scale": args.scale,
        "seed": args.seed,
        "nq": nq,
        "np": np_,
        "k": k,
        "draws_per_provider": draws,
        "repeats": args.repeats,
        "structure": structure,
        "build_s": build_s,
        "build_speedup": build_s["pointer"] / build_s["packed"],
        "ann_streams": stream_rows,
        "ann_stream_speedup_geomean": geomean([row["speedup"] for row in stream_rows]),
        "end_to_end": end_to_end,
        "flow_backend": args.flow_backend,
    }
    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2)
    print(
        f"[bench_index] NN-stream speedup geomean "
        f"{report['ann_stream_speedup_geomean']:.2f}x over group sizes "
        f"{list(GROUP_SIZES)} -> {args.out}"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
