"""Online-serving benchmark: per-delta latency and sustained throughput.

Replays seeded event streams (:mod:`repro.datagen.events`) — one per
arrival profile — against an :class:`~repro.serve.engine.OnlineAssignmentService`
holding warm per-shard sessions, and reports:

* **p50 / p99 per-delta-group latency** (ms) — group latencies include
  the warm re-assigns of every touched shard *and* any reconciliation
  pass the group triggered, so the p99 is honest about maintenance
  spikes;
* **sustained events/sec** — events over total time spent applying
  groups (startup's cold solves are reported separately, not amortized
  away);
* **warm/cold accounting** — warm re-assign rate plus both certified
  fallback kinds (pre-assign hazards and mid-assign dual-repair
  failures), so a latency regression can be attributed.

One correctness gate always runs (CI executes it at tiny scale):
after replaying each stream on a single-shard service, the live matching
must be **bit-identical** to a cold ``solve()`` of the final problem
state — the serving layer's acceptance contract.  ``--shards > 1`` runs
the sharded service for the latency numbers and gates on a separate
single-shard replay of the same streams.

Usage::

    PYTHONPATH=src python benchmarks/bench_serve.py \
        [--out BENCH_serve.json] [--scale 0.05] [--seed 0] \
        [--events 400] [--window 0.25] [--shards 1] [--rate 40]
"""

from __future__ import annotations

import argparse
import json
import os
import time

from repro.core.faults import FaultPlan
from repro.datagen.events import (
    PROFILES,
    EventStreamSpec,
    generate_events,
    summarize_events,
)
from repro.datagen.workloads import make_problem
from repro.experiments.config import PAPER_DEFAULTS, scaled
from repro.serve.engine import OnlineAssignmentService


def _build_problem(scale, seed):
    nq = scaled(PAPER_DEFAULTS["nq"], scale, minimum=4)
    np_ = scaled(PAPER_DEFAULTS["np"], scale, minimum=40)
    return make_problem(nq=nq, np_=np_, k=PAPER_DEFAULTS["k"], seed=seed)


def bench_profile(profile, args):
    problem = _build_problem(args.scale, args.seed)
    spec = EventStreamSpec(n_events=args.events, profile=profile, rate=args.rate)
    events = generate_events(problem, spec, seed=args.seed)
    stream = summarize_events(events)
    service = OnlineAssignmentService(
        problem,
        shards=args.shards,
        backend="array",
        reconcile_every=args.reconcile_every,
    )
    started = time.perf_counter()
    stats = service.run(events, window=args.window)
    wall_s = time.perf_counter() - started
    summary = stats.summary()
    summary.update(
        {
            "profile": profile,
            "wall_s": wall_s,
            "stream_arrivals": stream.arrivals,
            "stream_departures": stream.departures,
            "stream_capacity_changes": stream.capacity_changes,
            "stream_duration": stream.duration,
        }
    )
    return service, stats, summary


def identity_gate(profile, args):
    """Single-shard replay must be bit-identical to a cold solve of the
    final state.  Raises on violation."""
    problem = _build_problem(args.scale, args.seed)
    spec = EventStreamSpec(n_events=args.events, profile=profile, rate=args.rate)
    events = generate_events(problem, spec, seed=args.seed)
    service = OnlineAssignmentService(problem, shards=1, backend="array")
    service.run(events, window=args.window)
    report = service.verify_against_cold()
    if not report["identical"]:
        raise AssertionError(
            f"bit-identity violated on profile {profile!r}: live "
            f"{report['live_size']} pairs / cost {report['live_cost']}, "
            f"cold {report['cold_size']} pairs / cost "
            f"{report['cold_cost']}"
        )
    report["profile"] = profile
    report["status"] = "pass"
    return report


def bench_faulted(args):
    """Faulted replay at a fixed crash rate: one warm session killed
    every ``--fault-every`` delta groups, quarantined, and rebuilt cold.

    Reports degraded latency (the quarantine rebuilds land inside group
    latencies, so the degraded p99 is honest) and the recovery overhead
    (seconds spent rebuilding over total busy seconds) — and gates on
    the PR's acceptance contract: the degraded replay's final matching
    must be bit-identical to the clean replay's *and* to a cold solve.
    """
    profile = "steady"
    spec = EventStreamSpec(n_events=args.events, profile=profile, rate=args.rate)

    clean = OnlineAssignmentService(
        _build_problem(args.scale, args.seed), shards=1, backend="array"
    )
    events = generate_events(clean.problem, spec, seed=args.seed)
    clean_stats = clean.run(events, window=args.window)
    reference = sorted(clean.live_pairs())
    clean_summary = clean_stats.summary()

    kill_groups = list(range(1, max(2, clean_stats.groups), max(1, args.fault_every)))
    plan = FaultPlan.session_faults(kill_groups, num_shards=1)
    faulted = OnlineAssignmentService(
        _build_problem(args.scale, args.seed),
        shards=1,
        backend="array",
        fault_plan=plan,
    )
    stats = faulted.run(events, window=args.window)
    summary = stats.summary()

    identical = sorted(faulted.live_pairs()) == reference
    cold_report = faulted.verify_against_cold()
    if not (identical and cold_report["identical"]):
        raise AssertionError(
            f"faulted replay diverged: identical-to-clean={identical}, "
            f"identical-to-cold={cold_report['identical']} after "
            f"{stats.quarantines} quarantines"
        )

    busy = sum(stats.group_latencies_s)
    clean_p99 = clean_summary["latency_p99_ms"]
    degraded_p99 = summary["latency_p99_ms"]
    return {
        "status": "pass",
        "profile": profile,
        "fault_every": args.fault_every,
        "session_kills": len(kill_groups),
        "clean_latency_p50_ms": clean_summary["latency_p50_ms"],
        "clean_latency_p99_ms": clean_p99,
        "degraded_latency_p50_ms": summary["latency_p50_ms"],
        "degraded_latency_p99_ms": degraded_p99,
        "p99_inflation": degraded_p99 / clean_p99 if clean_p99 else 0.0,
        "quarantines": stats.quarantines,
        "recovery_s": stats.quarantine_s,
        "recovery_overhead": stats.quarantine_s / busy if busy else 0.0,
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_serve.json")
    parser.add_argument(
        "--scale",
        type=float,
        default=0.05,
        help="linear scale on |Q| and |P| (default 0.05)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--events",
        type=int,
        default=400,
        help="events per profile stream (default 400)",
    )
    parser.add_argument(
        "--window",
        type=float,
        default=0.25,
        help="batching window in stream-time units "
        "(default 0.25; ~rate*window events/group)",
    )
    parser.add_argument(
        "--rate",
        type=float,
        default=40.0,
        help="mean stream intensity, events per " "stream-time unit (default 40)",
    )
    parser.add_argument("--shards", type=int, default=1)
    parser.add_argument(
        "--reconcile-every",
        type=int,
        default=8,
        help="reconcile after every N groups when " "sharded (default 8)",
    )
    parser.add_argument(
        "--profiles", nargs="+", default=list(PROFILES), choices=list(PROFILES)
    )
    parser.add_argument(
        "--skip-identity-gate",
        action="store_true",
        help="skip the cold-solve bit-identity gate " "(latency-only runs)",
    )
    parser.add_argument(
        "--fault-every",
        type=int,
        default=4,
        help="faulted replay: kill the warm session "
        "every N delta groups (default 4)",
    )
    parser.add_argument(
        "--skip-faulted",
        action="store_true",
        help="skip the faulted-replay degradation point",
    )
    args = parser.parse_args(argv)

    rows = []
    pooled_latencies = []
    total_events = 0
    for profile in args.profiles:
        service, stats, summary = bench_profile(profile, args)
        rows.append(summary)
        pooled_latencies.extend(stats.group_latencies_s)
        total_events += stats.events
        print(
            f"[bench_serve] {profile}: {stats.events} events in "
            f"{stats.groups} groups, p50 {summary['latency_p50_ms']:.1f}ms "
            f"p99 {summary['latency_p99_ms']:.1f}ms, "
            f"{summary['events_per_sec']:.0f} ev/s, warm rate "
            f"{summary['warm_rate']:.2f}"
        )

    gates = []
    if not args.skip_identity_gate:
        for profile in args.profiles:
            gate = identity_gate(profile, args)
            gates.append(gate)
            print(
                f"[bench_serve] bit-identity vs cold solve ({profile}): "
                f"{gate['status']} ({gate['live_size']} pairs)"
            )

    if args.skip_faulted:
        faulted = {"status": "skipped"}
    else:
        faulted = bench_faulted(args)
        print(
            f"[bench_serve] faulted replay ({faulted['profile']}): "
            f"{faulted['session_kills']} session kills, degraded p99 "
            f"{faulted['degraded_latency_p99_ms']:.1f}ms (clean "
            f"{faulted['clean_latency_p99_ms']:.1f}ms), recovery "
            f"overhead {faulted['recovery_overhead']:.1%} -> "
            f"bit-identity {faulted['status']}"
        )

    pooled = sorted(pooled_latencies)

    def percentile(q):
        if not pooled:
            return 0.0
        rank = min(len(pooled) - 1, int(round(q / 100 * (len(pooled) - 1))))
        return pooled[rank]

    busy = sum(pooled)
    report = {
        "workload": "event-stream replay over warm shard sessions "
                    "(paper-unit |Q|=1000, |P|=100K, k=80, scaled)",
        "scale": args.scale,
        "seed": args.seed,
        "events": args.events,
        "window": args.window,
        "rate": args.rate,
        "shards": args.shards,
        "reconcile_every": args.reconcile_every,
        "cpu_count": os.cpu_count(),
        "profiles": list(args.profiles),
        "per_profile": rows,
        # Headlines: pooled over every profile's delta groups.
        "latency_p50_ms": percentile(50) * 1e3,
        "latency_p99_ms": percentile(99) * 1e3,
        "events_per_sec": total_events / busy if busy else 0.0,
        "warm_rate": (
            sum(r["warm_assigns"] for r in rows)
            / max(1, sum(r["assigns"] for r in rows))
        ),
        "bit_identity": {
            "status": "skipped" if args.skip_identity_gate else "pass",
            "gates": gates,
        },
        # Degraded-mode point: serving under a fixed session-crash rate.
        "faulted": faulted,
        "degraded_latency_p99_ms": faulted.get(
            "degraded_latency_p99_ms", 0.0
        ),
    }
    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2)
    print(
        f"[bench_serve] pooled p50 {report['latency_p50_ms']:.1f}ms / "
        f"p99 {report['latency_p99_ms']:.1f}ms, "
        f"{report['events_per_sec']:.0f} events/sec sustained -> "
        f"{args.out}"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
