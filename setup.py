"""Shim for environments whose pip cannot build wheels offline.

All real metadata lives in pyproject.toml; ``python setup.py develop``
or ``pip install -e . --no-build-isolation`` both work through it.
"""
from setuptools import setup

setup()
